/**
 * @file
 * Litmus tests: classic multi-copy shared-memory shapes run on a real
 * 4-node machine under every (page-mode policy x line-protocol
 * scheme) combination, asserting that the outcomes forbidden under
 * each protocol's consistency contract never appear.
 *
 * Values are observed through the protocol oracle's shadow-value
 * model: each location is written exactly once by its designated
 * writer, so a read observes 0 (initial) or 1 (after the write), and
 * ProtocolOracle::lastReadValue() captures what each processor's
 * committed read returned.  Every case runs under the continuous
 * oracle with fatal violations, several schedules (network jitter
 * seeds + random compute delays), and two placements: all locations
 * on different lines of one page, and each location on its own page
 * with a different static home.
 *
 * The simulated processors are blocking and in-order (one memory
 * access outstanding, committed before the next issues) and the
 * protocol is store-atomic, so the machine should be sequentially
 * consistent; these tests pin that property down per shape.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <tuple>
#include <vector>

#include "check/oracle.hh"
#include "core/machine.hh"
#include "sim/rng.hh"
#include "workload/workload.hh"

namespace prism {
namespace {

/** One instruction of a litmus program. */
struct Op {
    bool write;
    int loc;      //!< location index (X=0, Y=1, Z=2)
    int reg = -1; //!< output register for reads
};

/** Registers observed by one run (0 = initial value / never read). */
using Regs = std::array<std::uint64_t, 4>;

struct Shape {
    const char *name;
    std::vector<std::vector<Op>> procs; //!< per-processor programs
    bool (*forbidden)(const Regs &);    //!< SC-forbidden outcome
};

const Shape kShapes[] = {
    // Store buffering: both stores precede both loads in every SC
    // interleaving, so at least one load sees a 1.
    {"SB",
     {{{true, 0}, {false, 1, 0}}, {{true, 1}, {false, 0, 1}}},
     [](const Regs &r) { return r[0] == 0 && r[1] == 0; }},
    // Message passing: seeing the flag (Y) implies seeing the data (X).
    {"MP",
     {{{true, 0}, {true, 1}}, {{false, 1, 0}, {false, 0, 1}}},
     [](const Regs &r) { return r[0] == 1 && r[1] == 0; }},
    // Load buffering: loads cannot both observe the other's later store.
    {"LB",
     {{{false, 0, 0}, {true, 1}}, {{false, 1, 1}, {true, 0}}},
     [](const Regs &r) { return r[0] == 1 && r[1] == 1; }},
    // Independent reads of independent writes: all processors agree on
    // a single order of the two stores (store atomicity).
    {"IRIW",
     {{{true, 0}},
      {{true, 1}},
      {{false, 0, 0}, {false, 1, 1}},
      {{false, 1, 2}, {false, 0, 3}}},
     [](const Regs &r) {
         return r[0] == 1 && r[1] == 0 && r[2] == 1 && r[3] == 0;
     }},
    // Coherence (CoRR): reads of one location cannot go backwards.
    {"CoRR",
     {{{true, 0}}, {{false, 0, 0}, {false, 0, 1}}},
     [](const Regs &r) { return r[0] > r[1]; }},
    // Write-to-read causality: P2 sees Y=1, which P1 wrote after
    // reading X=1, so P2 must also see X=1.
    {"WRC",
     {{{true, 0}},
      {{false, 0, 0}, {true, 1}},
      {{false, 1, 1}, {false, 0, 2}}},
     [](const Regs &r) {
         return r[0] == 1 && r[1] == 1 && r[2] == 0;
     }},
};

/**
 * Per-protocol expectation table.  All four line-protocol schemes are
 * store-atomic invalidation protocols (a store completes only after
 * every other copy is invalidated; Owned/Forward change who supplies
 * data, never when a store becomes visible), so each shape's
 * SC-forbidden outcome is forbidden under every scheme.  The table
 * makes that expectation explicit per protocol so a future relaxed
 * scheme (e.g. an update protocol or early store acknowledgement)
 * must state which shapes it newly permits.
 */
struct ProtocolExpectation {
    ProtocolScheme scheme;
    /** Shape names whose forbidden outcome the scheme permits. */
    std::vector<const char *> permitted;
};

const ProtocolExpectation kProtocolExpectations[] = {
    {ProtocolScheme::Msi, {}},
    {ProtocolScheme::Mesi, {}},
    {ProtocolScheme::Moesi, {}},
    {ProtocolScheme::Mesif, {}},
};

bool
outcomePermitted(ProtocolScheme scheme, const char *shape)
{
    for (const ProtocolExpectation &pe : kProtocolExpectations) {
        if (pe.scheme != scheme)
            continue;
        for (const char *s : pe.permitted) {
            if (!std::strcmp(s, shape))
                return true;
        }
        return false;
    }
    ADD_FAILURE() << "no expectation row for protocol "
                  << protocolName(scheme);
    return false;
}

/** Location layout: same page (distinct lines) or one page each. */
enum class Placement { SamePage, DiffHome };

const char *
placementName(Placement pl)
{
    return pl == Placement::SamePage ? "same_page" : "diff_home";
}

CoTask
litmusProgram(Proc &p, Machine &m, const std::vector<Op> *ops,
              const std::vector<VAddr> *locs, Regs *regs,
              std::uint64_t seed)
{
    Rng rng(seed * 0x9E3779B97F4A7C15ULL + p.id() + 1);
    p.compute(rng.below(300)); // skew the start times
    if (!ops)
        co_return;
    for (const Op &op : *ops) {
        if (op.write) {
            co_await p.write((*locs)[op.loc]);
        } else {
            co_await p.read((*locs)[op.loc]);
            (*regs)[op.reg] = m.oracle()->lastReadValue(p.id());
        }
        p.compute(rng.below(80));
    }
}

using LitmusParam = std::tuple<PolicyKind, ProtocolScheme>;

class Litmus : public ::testing::TestWithParam<LitmusParam>
{
};

TEST_P(Litmus, ForbiddenOutcomesNeverAppear)
{
    const PolicyKind policy = std::get<0>(GetParam());
    const ProtocolScheme protocol = std::get<1>(GetParam());
    // Capped policies need a finite page cache to exercise page-outs.
    const bool capped = policy != PolicyKind::Scoma &&
                        policy != PolicyKind::LaNuma;

    for (const Shape &shape : kShapes) {
        for (Placement pl : {Placement::SamePage, Placement::DiffHome}) {
            for (std::uint64_t round = 0; round < 3; ++round) {
                MachineConfig cfg;
                cfg.numNodes = 4;
                cfg.procsPerNode = 1;
                cfg.policy = policy;
                cfg.protocol = protocol;
                cfg.clientFrameCap = capped ? 2 : 0;
                cfg.oracleMode = OracleMode::Continuous;
                cfg.oracleFatal = true;
                cfg.netJitterMax = round == 0 ? 0 : 48;
                cfg.jitterSeed = round * 7919 + 1;
                Machine m(cfg);

                const std::uint64_t gsid =
                    m.shmget(0x117A05, 4 * kPageBytes);
                m.shmatAll(kSharedVsid, gsid);

                // X, Y, Z either on one page (lines 0/1/2) or on pages
                // 0/1/2 (static homes 0/1/2 — gpage % numNodes).
                const std::uint32_t lineBytes = cfg.lineBytes;
                std::vector<VAddr> locs;
                for (std::uint64_t l = 0; l < 3; ++l) {
                    if (pl == Placement::SamePage)
                        locs.push_back(
                            makeVAddr(kSharedVsid, 0, l * lineBytes));
                    else
                        locs.push_back(makeVAddr(kSharedVsid, l, 0));
                }

                Regs regs{};
                m.run([&](Proc &p) {
                    const std::vector<Op> *ops =
                        p.id() < shape.procs.size()
                            ? &shape.procs[p.id()]
                            : nullptr;
                    return litmusProgram(p, m, ops, &locs, &regs,
                                         round * 131 + 17);
                });

                if (!outcomePermitted(protocol, shape.name)) {
                    EXPECT_FALSE(shape.forbidden(regs))
                        << shape.name << "/" << placementName(pl)
                        << " round " << round
                        << ": forbidden outcome [" << regs[0] << ","
                        << regs[1] << "," << regs[2] << "," << regs[3]
                        << "] under " << policyName(policy) << "/"
                        << protocolName(protocol);
                }
                ASSERT_EQ(m.oracle()->violationCount(), 0u);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    PolicyProtocolMatrix, Litmus,
    ::testing::Combine(
        ::testing::Values(PolicyKind::Scoma, PolicyKind::LaNuma,
                          PolicyKind::Scoma70, PolicyKind::DynFcfs,
                          PolicyKind::DynUtil, PolicyKind::DynLru,
                          PolicyKind::DynBoth),
        ::testing::Values(ProtocolScheme::Msi, ProtocolScheme::Mesi,
                          ProtocolScheme::Moesi,
                          ProtocolScheme::Mesif)),
    [](const ::testing::TestParamInfo<LitmusParam> &info) {
        std::string name = policyName(std::get<0>(info.param));
        name += '_';
        name += protocolName(std::get<1>(info.param));
        for (auto &ch : name) {
            if (ch == '-')
                ch = '_';
        }
        return name;
    });

} // namespace
} // namespace prism
