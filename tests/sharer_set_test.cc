/**
 * @file
 * Property suite for SharerSet/SharerRef (coherence/sharer_set.hh).
 *
 * SharerSet replaced the raw std::uint64_t node bitmasks under a
 * bit-identical-behavior contract at <= 64 nodes, plus a correctness
 * contract past 64 that the old representation never had.  Two
 * mechanical checks enforce both:
 *
 *  - a randomized op stream (add/remove/test/count/iterate/clear,
 *    copies, snapshots) driven in lockstep against std::set<NodeId>,
 *    at widths straddling the inline<->spill boundary;
 *  - an exhaustive single-word equivalence sweep: every operation on
 *    a SharerSet built from a random 64-bit mask must agree with the
 *    direct bitmask expression it replaced, including iteration order
 *    and the %#llx-style rendering the message log prints.
 *
 * Seeds 1..16 run inline; tests/CMakeLists.txt registers 16 extra
 * ctest entries re-running the sweep under PRISM_PROPERTY_SEED,
 * mirroring the other property suites.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <random>
#include <set>

#include "coherence/sharer_set.hh"

namespace prism {
namespace {

// Widths chosen to straddle the representation boundary: pure inline,
// the last inline id, the first spilled id, multi-word, and the full
// kMaxNodes-scale machine.
constexpr std::uint32_t kWidths[] = {8, 63, 64, 65, 128, 1024};

/** Drive one randomized op stream against std::set<NodeId>. */
void
driveAgainstModel(std::uint64_t seed, std::uint32_t width)
{
    std::mt19937_64 rng(seed * 2654435761u + width);
    SharerSet s;
    std::set<NodeId> model;

    for (int step = 0; step < 2000; ++step) {
        const NodeId n = static_cast<NodeId>(rng() % width);
        switch (rng() % 8) {
          case 0:
          case 1:
          case 2:
            s.add(n);
            model.insert(n);
            break;
          case 3:
            s.remove(n);
            model.erase(n);
            break;
          case 4:
            ASSERT_EQ(s.test(n), model.count(n) != 0)
                << "test(" << n << ") step " << step;
            break;
          case 5: {
            // Full iteration: ascending order, exact membership.
            auto it = model.begin();
            for (NodeId m = s.first(); m != kInvalidNode;
                 m = s.next(m)) {
                ASSERT_NE(it, model.end()) << "extra member " << m;
                ASSERT_EQ(m, *it) << "order/membership step " << step;
                ++it;
            }
            ASSERT_EQ(it, model.end()) << "missing members";
            break;
          }
          case 6: {
            // Copy and snapshot round-trips preserve value equality.
            SharerSet copy = s;
            ASSERT_EQ(copy, s);
            SharerSet snap = SharerSet::fromRef(s.ref());
            ASSERT_EQ(snap, s);
            ASSERT_EQ(snap.count(), s.count());
            break;
          }
          case 7:
            if (rng() % 32 == 0) { // rare full clear
                s.clear();
                model.clear();
            }
            break;
        }
        ASSERT_EQ(s.count(), model.size()) << "count at step " << step;
        ASSERT_EQ(s.empty(), model.empty());
    }
}

TEST(SharerSetProperty, MatchesSetModelAcrossWidths)
{
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
        for (std::uint32_t width : kWidths)
            driveAgainstModel(seed, width);
    }
}

TEST(SharerSetSeedSweep, MatchesSetModel)
{
    std::uint64_t seed = 99;
    if (const char *s = std::getenv("PRISM_PROPERTY_SEED"))
        seed = std::strtoull(s, nullptr, 10);
    for (std::uint32_t width : kWidths)
        driveAgainstModel(seed * 1000 + 17, width);
}

TEST(SharerSetProperty, SingleWordEquivalentToRawBitmask)
{
    // The <= 64-node fast path must agree with every raw-mask idiom it
    // replaced, operation by operation.
    std::mt19937_64 rng(42);
    for (int trial = 0; trial < 4000; ++trial) {
        const std::uint64_t mask = rng() & rng(); // vary density
        SharerSet s;
        for (NodeId n = 0; n < 64; ++n) {
            if ((mask >> n) & 1)
                s.add(n);
        }
        ASSERT_TRUE(s.isInline());
        ASSERT_EQ(s.lowWord(), mask);
        ASSERT_EQ(s.count(),
                  static_cast<std::uint32_t>(__builtin_popcountll(mask)));
        ASSERT_EQ(s.empty(), mask == 0);

        const NodeId probe = static_cast<NodeId>(rng() % 64);
        ASSERT_EQ(s.test(probe), ((mask >> probe) & 1) != 0);

        // remove == `mask & ~(1ULL << n)`
        SharerSet r = s;
        r.remove(probe);
        ASSERT_EQ(r.lowWord(), mask & ~(1ULL << probe));

        // Iteration == the historical ascending probe loop.
        NodeId it = s.first();
        for (NodeId n = 0; n < 64; ++n) {
            if (!((mask >> n) & 1))
                continue;
            ASSERT_EQ(it, n);
            it = s.next(it);
        }
        ASSERT_EQ(it, kInvalidNode);

        // Rendering matches the %#llx the message log printed.
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%#llx",
                      static_cast<unsigned long long>(mask));
        ASSERT_EQ(s.toString(), buf);
    }
}

TEST(SharerSet, SpillBoundary)
{
    SharerSet s;
    s.add(63);
    EXPECT_TRUE(s.isInline());
    s.add(64); // first id past the inline word spills
    EXPECT_FALSE(s.isInline());
    EXPECT_TRUE(s.test(63));
    EXPECT_TRUE(s.test(64));
    EXPECT_EQ(s.count(), 2u);
    EXPECT_EQ(s.first(), 63u);
    EXPECT_EQ(s.next(63), 64u);
    EXPECT_EQ(s.next(64), kInvalidNode);
}

TEST(SharerSet, InlineAndSpilledCompareEqual)
{
    SharerSet a;
    a.add(3);
    SharerSet b;
    b.add(900); // forces spill
    b.remove(900);
    b.add(3);
    EXPECT_FALSE(b.isInline());
    EXPECT_EQ(a, b);
    EXPECT_EQ(b, a);
    b.add(900);
    EXPECT_NE(a, b);
}

TEST(SharerSet, GrowthPreservesMembers)
{
    SharerSet s;
    s.add(5);
    s.add(63);
    s.add(64);   // 1 -> 2 words
    s.add(500);  // 2 -> 8 words
    s.add(1023); // 8 -> 16 words
    EXPECT_TRUE(s.test(5));
    EXPECT_TRUE(s.test(63));
    EXPECT_TRUE(s.test(64));
    EXPECT_TRUE(s.test(500));
    EXPECT_TRUE(s.test(1023));
    EXPECT_EQ(s.count(), 5u);
    // Members iterate ascending across word boundaries.
    EXPECT_EQ(s.first(), 5u);
    EXPECT_EQ(s.next(64), 500u);
    EXPECT_EQ(s.next(500), 1023u);
}

TEST(SharerSet, TestPastCapacityIsFalseNotUB)
{
    SharerSet s;
    s.add(3);
    EXPECT_FALSE(s.test(64));   // beyond inline word
    EXPECT_FALSE(s.test(4095)); // way beyond
    s.remove(4095);             // no-op, not a crash
    EXPECT_EQ(s.count(), 1u);
}

TEST(SharerSet, MoveStealsSpillBlock)
{
    SharerSet a;
    a.add(100);
    SharerSet b = std::move(a);
    EXPECT_TRUE(b.test(100));
    EXPECT_TRUE(a.empty()); // moved-from is a valid empty set
    a.add(7);               // and usable again
    EXPECT_EQ(a.count(), 1u);
}

} // namespace
} // namespace prism
