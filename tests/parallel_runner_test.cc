/**
 * @file
 * Parallel sweep runner tests.
 *
 * The load-bearing invariant: simulations are deterministic and fully
 * isolated per Machine, so the same (app, policy) sweep must produce
 * bit-identical RunMetrics whether it runs sequentially or on a
 * worker pool — for any worker count and any completion order.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <vector>

#include "workload/apps.hh"
#include "workload/experiment.hh"
#include "workload/parallel_runner.hh"

namespace prism {
namespace {

MachineConfig
smallCfg()
{
    MachineConfig cfg;
    cfg.numNodes = 4;
    cfg.procsPerNode = 2;
    return cfg;
}

::testing::AssertionResult
metricsIdentical(const RunMetrics &a, const RunMetrics &b)
{
#define PRISM_CHECK_FIELD(f)                                              \
    if (a.f != b.f)                                                       \
        return ::testing::AssertionFailure()                              \
               << #f " differs: " << a.f << " vs " << b.f;
    PRISM_CHECK_FIELD(execCycles)
    PRISM_CHECK_FIELD(totalCycles)
    PRISM_CHECK_FIELD(remoteMisses)
    PRISM_CHECK_FIELD(clientPageOuts)
    PRISM_CHECK_FIELD(upgrades)
    PRISM_CHECK_FIELD(invalidations)
    PRISM_CHECK_FIELD(networkMessages)
    PRISM_CHECK_FIELD(pageFaults)
    PRISM_CHECK_FIELD(framesAllocated)
    PRISM_CHECK_FIELD(references)
    PRISM_CHECK_FIELD(forwards)
    PRISM_CHECK_FIELD(migrations)
#undef PRISM_CHECK_FIELD
    if (a.avgUtilization != b.avgUtilization)
        return ::testing::AssertionFailure() << "avgUtilization differs";
    if (a.clientScomaPeakPerNode != b.clientScomaPeakPerNode)
        return ::testing::AssertionFailure()
               << "clientScomaPeakPerNode differs";
    return ::testing::AssertionSuccess();
}

TEST(TaskPool, RunsAllTasks)
{
    TaskPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(TaskPool, NestedSubmissionsCompleteBeforeWaitReturns)
{
    TaskPool pool(3);
    std::atomic<int> count{0};
    for (int i = 0; i < 10; ++i) {
        pool.submit([&pool, &count] {
            ++count;
            for (int j = 0; j < 5; ++j)
                pool.submit([&count] { ++count; });
        });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 10 + 10 * 5);
}

TEST(TaskPool, WaitIsReusable)
{
    TaskPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 2);
}

TEST(Jobs, EnvAndArgsParsing)
{
    ASSERT_EQ(setenv("PRISM_JOBS", "3", 1), 0);
    EXPECT_EQ(defaultJobs(), 3u);

    char a0[] = "bench";
    char a1[] = "--jobs";
    char a2[] = "5";
    char *argv1[] = {a0, a1, a2};
    EXPECT_EQ(jobsFromArgs(3, argv1), 5u);

    char b1[] = "--jobs=7";
    char *argv2[] = {a0, b1};
    EXPECT_EQ(jobsFromArgs(2, argv2), 7u);

    // Unrelated args fall back to the environment.
    char c1[] = "--list";
    char *argv3[] = {a0, c1};
    EXPECT_EQ(jobsFromArgs(2, argv3), 3u);

    ASSERT_EQ(unsetenv("PRISM_JOBS"), 0);
    EXPECT_GE(defaultJobs(), 1u);
}

/**
 * The determinism contract: sequential runPolicySweep and the
 * 4-worker parallel runner must agree bit-for-bit on every metric,
 * for every (app, policy) cell including the calibrated-cap ones.
 */
TEST(ParallelSweep, BitIdenticalToSequentialSweep)
{
    const MachineConfig base = smallCfg();
    const auto policies = paperPolicies();

    auto all = standardApps(AppScale::Tiny);
    std::vector<AppSpec> apps;
    for (auto &a : all) {
        if (a.name == "FFT" || a.name == "Radix")
            apps.push_back(a);
    }
    ASSERT_EQ(apps.size(), 2u);

    std::vector<ExperimentResult> sequential;
    for (const auto &app : apps) {
        auto rs = runPolicySweep(
            RunSpec{.machine = base, .policies = policies}, app);
        sequential.insert(sequential.end(), rs.begin(), rs.end());
    }

    const auto parallel = runSweepsParallel(
        RunSpec{.machine = base, .policies = policies, .jobs = 4},
        apps);

    ASSERT_EQ(parallel.size(), sequential.size());
    for (std::size_t i = 0; i < parallel.size(); ++i) {
        EXPECT_EQ(parallel[i].app, sequential[i].app) << "slot " << i;
        EXPECT_EQ(parallel[i].policy, sequential[i].policy)
            << "slot " << i;
        EXPECT_TRUE(metricsIdentical(parallel[i].metrics,
                                     sequential[i].metrics))
            << "app " << parallel[i].app << " slot " << i;
    }
}

/** Worker count must not change results either. */
TEST(ParallelSweep, WorkerCountInvariant)
{
    const MachineConfig base = smallCfg();
    const std::vector<PolicyKind> policies = {
        PolicyKind::Scoma, PolicyKind::Scoma70, PolicyKind::DynLru};

    auto all = standardApps(AppScale::Tiny);
    std::vector<AppSpec> apps;
    for (auto &a : all) {
        if (a.name == "LU")
            apps.push_back(a);
    }
    ASSERT_EQ(apps.size(), 1u);

    const auto one = runSweepsParallel(
        RunSpec{.machine = base, .policies = policies, .jobs = 1},
        apps);
    const auto eight = runSweepsParallel(
        RunSpec{.machine = base, .policies = policies, .jobs = 8},
        apps);
    ASSERT_EQ(one.size(), eight.size());
    for (std::size_t i = 0; i < one.size(); ++i)
        EXPECT_TRUE(metricsIdentical(one[i].metrics, eight[i].metrics));
}

} // namespace
} // namespace prism
