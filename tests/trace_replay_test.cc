/**
 * @file
 * Replay-determinism contract (docs/TRACE.md): for any app, replaying
 * a recording through the SAME machine configuration must produce a
 * run report byte-identical to direct execution once the provenance
 * fields are stripped — and recording itself must not perturb the
 * simulation at all.  Also covers the committed regression fixture
 * (tests/fixtures/) and replay's fail-fast config checks.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/machine.hh"
#include "frontend/ptrace.hh"
#include "frontend/trace_workload.hh"
#include "workload/apps.hh"
#include "workload/experiment.hh"
#include "workload/workload.hh"

namespace prism {
namespace {

MachineConfig
smallCfg()
{
    MachineConfig cfg;
    cfg.numNodes = 4;
    cfg.procsPerNode = 2;
    return cfg;
}

/**
 * Serialize @p r without the timestamp, the frontend-provenance keys
 * and the workload-level histograms — everything that may
 * legitimately differ between an execution and a replay of the same
 * simulation.  (Workload histograms, e.g. the KV store's per-op
 * request latencies, only exist when the real workload body runs;
 * a replay re-issues the recorded reference stream through a
 * TraceWorkload, which has none.  scripts/strip_report.py applies
 * the same rule for the CI check.)
 */
std::string
strippedJson(const RunReport &r)
{
    RunReport s = r;
    s.generatedAt.clear();
    s.frontend.clear();
    s.traceWorkload.clear();
    s.traceOps = 0;
    std::erase_if(s.histograms, [](const auto &h) {
        return h.component == "workload";
    });
    std::ostringstream os;
    s.writeJson(os);
    return os.str();
}

std::string
tmpTrace(const std::string &name)
{
    return testing::TempDir() + name;
}

/**
 * The core contract, all eight applications: exec, record and replay
 * at the recorded configuration agree byte-for-byte on the stripped
 * report (same references, same cycles, same counters, same latency
 * histograms).
 */
TEST(TraceReplay, RecordAndReplayMatchExecOnEveryTinyApp)
{
    for (const AppSpec &app : standardApps(AppScale::Tiny)) {
        const std::string path =
            tmpTrace("replay_" + app.name + ".ptrace");

        RunReport exec_r, rec_r, rep_r;
        runOnce(RunSpec{.machine = smallCfg()}, app, &exec_r);
        runOnce(RunSpec{.machine = smallCfg(),
                        .frontend = FrontendKind::Record,
                        .traceFile = path},
                app, &rec_r);
        runOnce(RunSpec{.machine = smallCfg(),
                        .frontend = FrontendKind::Replay,
                        .traceFile = path},
                app, &rep_r);

        const std::string want = strippedJson(exec_r);
        EXPECT_EQ(strippedJson(rec_r), want)
            << app.name << ": recording perturbed the run";
        EXPECT_EQ(strippedJson(rep_r), want)
            << app.name << ": replay diverged from execution";

        EXPECT_EQ(exec_r.frontend, "exec");
        EXPECT_EQ(rec_r.frontend, "record");
        EXPECT_EQ(rep_r.frontend, "replay");
        EXPECT_EQ(rec_r.traceWorkload, app.name);
        EXPECT_EQ(rep_r.traceWorkload, app.name);
        EXPECT_GT(rep_r.traceOps, 0u);
        EXPECT_EQ(rep_r.traceOps, rec_r.traceOps) << app.name;
    }
}

TEST(TraceReplay, RecordingIsDeterministic)
{
    const auto apps = standardApps(AppScale::Tiny);
    const AppSpec *lu = nullptr;
    for (const auto &a : apps) {
        if (a.name == "LU")
            lu = &a;
    }
    ASSERT_NE(lu, nullptr);

    const std::string p1 = tmpTrace("rec_once.ptrace");
    const std::string p2 = tmpTrace("rec_twice.ptrace");
    runOnce(RunSpec{.machine = smallCfg(),
                    .frontend = FrontendKind::Record,
                    .traceFile = p1},
            *lu);
    runOnce(RunSpec{.machine = smallCfg(),
                    .frontend = FrontendKind::Record,
                    .traceFile = p2},
            *lu);
    auto t1 = RecordedTrace::readFile(p1);
    auto t2 = RecordedTrace::readFile(p2);
    EXPECT_EQ(t1->serialize(), t2->serialize());
    EXPECT_GT(t1->totalOps(), 0u);
    EXPECT_GT(t1->encodedBytes(), 0u);
}

TEST(TraceReplay, PolicySweepFromOneRecordingMatchesExecSweep)
{
    const auto apps = standardApps(AppScale::Tiny);
    const AppSpec *fft = nullptr;
    for (const auto &a : apps) {
        if (a.name == "FFT")
            fft = &a;
    }
    ASSERT_NE(fft, nullptr);
    const std::vector<PolicyKind> policies = {
        PolicyKind::Scoma, PolicyKind::LaNuma, PolicyKind::Scoma70,
        PolicyKind::DynLru};

    const auto exec_rs = runPolicySweep(
        RunSpec{.machine = smallCfg(), .policies = policies}, *fft);

    const std::string path = tmpTrace("sweep_fft.ptrace");
    const auto rec_rs = runPolicySweep(
        RunSpec{.machine = smallCfg(),
                .policies = policies,
                .frontend = FrontendKind::Record,
                .traceFile = path},
        *fft);
    const auto rep_rs = runPolicySweep(
        RunSpec{.machine = smallCfg(),
                .policies = policies,
                .frontend = FrontendKind::Replay,
                .traceFile = path},
        *fft);

    ASSERT_EQ(rec_rs.size(), exec_rs.size());
    ASSERT_EQ(rep_rs.size(), exec_rs.size());
    for (std::size_t i = 0; i < exec_rs.size(); ++i) {
        const std::string want = strippedJson(exec_rs[i].report);
        EXPECT_EQ(strippedJson(rec_rs[i].report), want)
            << "policy " << policyName(policies[i]) << " (record)";
        // FFT's reference stream is config-independent, so replaying
        // the calibration recording reproduces even the capped-policy
        // cells exactly.
        EXPECT_EQ(strippedJson(rep_rs[i].report), want)
            << "policy " << policyName(policies[i]) << " (replay)";
    }
}

TEST(TraceReplayDeath, ProcCountMismatchDies)
{
    const auto apps = standardApps(AppScale::Tiny);
    const AppSpec *fft = nullptr;
    for (const auto &a : apps) {
        if (a.name == "FFT")
            fft = &a;
    }
    ASSERT_NE(fft, nullptr);
    const std::string path = tmpTrace("mismatch_fft.ptrace");
    runOnce(RunSpec{.machine = smallCfg(),
                    .frontend = FrontendKind::Record,
                    .traceFile = path},
            *fft);

    MachineConfig bigger = smallCfg();
    bigger.procsPerNode = 4;
    EXPECT_EXIT(runOnce(RunSpec{.machine = bigger,
                                .frontend = FrontendKind::Replay,
                                .traceFile = path},
                        *fft),
                testing::ExitedWithCode(1),
                "recorded on 8 processors.*has 16");
}

TEST(TraceReplayDeath, MissingTraceFileArgumentDies)
{
    const auto apps = standardApps(AppScale::Tiny);
    EXPECT_EXIT(runOnce(RunSpec{.machine = smallCfg(),
                                .frontend = FrontendKind::Replay},
                        apps[0]),
                testing::ExitedWithCode(1), "requires a trace file");
    EXPECT_EXIT(runOnce(RunSpec{.machine = smallCfg(),
                                .frontend = FrontendKind::Record},
                        apps[0]),
                testing::ExitedWithCode(1), "requires a trace file");
}

#ifdef PRISM_SOURCE_DIR
/**
 * The committed fixture: a tiny FFT recording checked into the repo.
 * Replaying it must work under every line protocol (the trace layer
 * sits entirely above the coherence protocol), and two replays must
 * agree byte-for-byte.  Regenerate with PRISM_UPDATE_GOLDEN=1 after
 * an intentional stream change (and bump kPtraceVersion if the
 * format itself changed).
 */
TEST(TraceReplay, CommittedFixtureReplaysUnderEveryProtocol)
{
    const std::string path = std::string(PRISM_SOURCE_DIR) +
                             "/tests/fixtures/fft_tiny.ptrace";

    if (std::getenv("PRISM_UPDATE_GOLDEN")) {
        const auto apps = standardApps(AppScale::Tiny);
        for (const auto &a : apps) {
            if (a.name == "FFT") {
                runOnce(RunSpec{.machine = smallCfg(),
                                .frontend = FrontendKind::Record,
                                .traceFile = path},
                        a);
            }
        }
        GTEST_SKIP() << "regenerated " << path;
    }

    auto trace = RecordedTrace::readFile(path);
    EXPECT_EQ(trace->workload, "FFT");
    ASSERT_EQ(trace->numProcs, 8u);

    for (ProtocolScheme ps :
         {ProtocolScheme::Msi, ProtocolScheme::Mesi,
          ProtocolScheme::Moesi, ProtocolScheme::Mesif}) {
        MachineConfig cfg = smallCfg();
        cfg.protocol = ps;
        auto run = [&](RunReport *r) {
            TraceWorkload w(trace);
            Machine m(cfg);
            RunMetrics metrics = runWorkload(m, w);
            *r = m.report();
            return metrics;
        };
        RunReport r1, r2;
        const RunMetrics m1 = run(&r1);
        run(&r2);
        EXPECT_GT(m1.execCycles, 0u) << protocolName(ps);
        EXPECT_GT(m1.references, 0u) << protocolName(ps);
        EXPECT_EQ(strippedJson(r1), strippedJson(r2))
            << protocolName(ps);
    }
}

/**
 * The KV fixture: a tiny mix-B Zipfian recording of the partitioned
 * KV store.  Unlike the SPLASH kernels, KV's reference stream is
 * timing-dependent (the open-loop generator idle-pads toward its
 * arrival schedule), so the committed recording pins the stream a
 * given build produced — replays of it must stay deterministic and
 * protocol-independent just like any other trace.  Regenerate with
 * PRISM_UPDATE_GOLDEN=1 after an intentional workload change.
 */
TEST(TraceReplay, CommittedKvFixtureReplaysDeterministically)
{
    const std::string path = std::string(PRISM_SOURCE_DIR) +
                             "/tests/fixtures/kv_tiny.ptrace";

    if (std::getenv("PRISM_UPDATE_GOLDEN")) {
        const auto apps = standardApps(AppScale::Tiny);
        for (const auto &a : apps) {
            if (a.name == "KV") {
                runOnce(RunSpec{.machine = smallCfg(),
                                .frontend = FrontendKind::Record,
                                .traceFile = path},
                        a);
            }
        }
        GTEST_SKIP() << "regenerated " << path;
    }

    auto trace = RecordedTrace::readFile(path);
    EXPECT_EQ(trace->workload, "KV");
    ASSERT_EQ(trace->numProcs, 8u);

    for (ProtocolScheme ps :
         {ProtocolScheme::Mesi, ProtocolScheme::Moesi}) {
        MachineConfig cfg = smallCfg();
        cfg.protocol = ps;
        auto run = [&](RunReport *r) {
            TraceWorkload w(trace);
            Machine m(cfg);
            RunMetrics metrics = runWorkload(m, w);
            *r = m.report();
            return metrics;
        };
        RunReport r1, r2;
        const RunMetrics m1 = run(&r1);
        run(&r2);
        EXPECT_GT(m1.execCycles, 0u) << protocolName(ps);
        EXPECT_GT(m1.references, 0u) << protocolName(ps);
        EXPECT_EQ(strippedJson(r1), strippedJson(r2))
            << protocolName(ps);
    }
}
#endif

} // namespace
} // namespace prism
