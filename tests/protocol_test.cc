/**
 * @file
 * Protocol-level tests: directed coherence scenarios on a small
 * machine, verified against directory, fine-grain-tag and counter
 * state.
 */

#include <gtest/gtest.h>

#include <functional>

#include "core/machine.hh"
#include "workload/workload.hh"

namespace prism {
namespace {

constexpr std::uint64_t kKey = 0x7E57;

/** Test machine with a shared segment attached on every node. */
struct Rig {
    explicit Rig(MachineConfig cfg = {}) : m(normalize(cfg))
    {
        gsid = m.shmget(kKey, 64 * kPageBytes);
        m.shmatAll(kSharedVsid, gsid);
    }

    static MachineConfig
    normalize(MachineConfig cfg)
    {
        cfg.numNodes = 4;
        cfg.procsPerNode = 2;
        return cfg;
    }

    /** VA of byte @p off within shared page @p pnum. */
    VAddr
    va(std::uint64_t pnum, std::uint64_t off = 0) const
    {
        return makeVAddr(kSharedVsid, pnum, off);
    }

    GPage
    gp(std::uint64_t pnum) const
    {
        return (gsid << kPageNumBits) | pnum;
    }

    /**
     * Run one coroutine per processor; @p progs maps ProcId to a
     * program, missing entries idle (but still hit barriers used by
     * the programs via Proc::barrier — idle programs just return).
     */
    void
    run(std::function<CoTask(Proc &)> make)
    {
        m.run(make);
    }

    Machine m;
    std::uint64_t gsid = 0;
};

CoTask
idle(Proc &)
{
    co_return;
}

TEST(Protocol, HomeFaultGivesExclusiveTags)
{
    Rig rig;
    // Page 0 is homed at node 0 (round robin); proc 0 lives there.
    rig.run([&](Proc &p) -> CoTask {
        if (p.id() != 0)
            return idle(p);
        return [](Proc &pp, Rig &r) -> CoTask {
            co_await pp.write(r.va(0));
            co_await pp.read(r.va(0, 64));
        }(p, rig);
    });

    auto &ctrl = rig.m.node(0).controller();
    EXPECT_TRUE(ctrl.isDynHome(rig.gp(0)));
    FrameNum hf = ctrl.pit().frameOf(rig.gp(0));
    ASSERT_NE(hf, kInvalidFrame);
    const PitEntry *e = ctrl.pit().entry(hf);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->mode, PageMode::Scoma);
    EXPECT_EQ(e->tags->get(0), FgTag::Exclusive);
    EXPECT_EQ(ctrl.stats().remoteMisses, 0u);
    // Home kernel recorded a home fault, not a client fault.
    EXPECT_EQ(rig.m.node(0).kernel().stats().faultsHome, 1u);
}

TEST(Protocol, RemoteReadCreatesSharers)
{
    Rig rig;
    rig.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() == 0) {
                co_await pp.write(r.va(0)); // home copy, Owned(0)
            }
            co_await pp.barrier(1);
            if (pp.id() == 2) { // node 1
                co_await pp.read(r.va(0));
            }
        }(p, rig);
    });

    auto &home = rig.m.node(0).controller();
    auto d = home.directory().line(rig.gp(0), 0);
    ASSERT_TRUE(d);
    EXPECT_EQ(d.state(), DirState::Shared);
    EXPECT_TRUE(d.isSharer(0));
    EXPECT_TRUE(d.isSharer(1));
    // Client node 1 holds the page S-COMA with a Shared tag.
    auto &c1 = rig.m.node(1).controller();
    FrameNum f = c1.pit().frameOf(rig.gp(0));
    ASSERT_NE(f, kInvalidFrame);
    EXPECT_EQ(c1.pit().entry(f)->tags->get(0), FgTag::Shared);
    EXPECT_EQ(c1.stats().remoteMisses, 1u);
    EXPECT_EQ(rig.m.node(1).kernel().stats().faultsClient, 1u);
}

TEST(Protocol, WriteInvalidatesAllSharers)
{
    Rig rig;
    rig.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() == 0)
                co_await pp.write(r.va(0));
            co_await pp.barrier(1);
            if (pp.id() == 2 || pp.id() == 4) // nodes 1 and 2 read
                co_await pp.read(r.va(0));
            co_await pp.barrier(2);
            if (pp.id() == 6) // node 3 writes
                co_await pp.write(r.va(0));
        }(p, rig);
    });

    auto d = rig.m.node(0).controller().directory().line(rig.gp(0), 0);
    EXPECT_EQ(d.state(), DirState::Owned);
    EXPECT_EQ(d.owner(), 3u);
    // Every former sharer's tag is Invalid.
    for (NodeId n : {0u, 1u, 2u}) {
        auto &c = rig.m.node(n).controller();
        FrameNum f = c.pit().frameOf(rig.gp(0));
        if (f == kInvalidFrame)
            continue;
        EXPECT_EQ(c.pit().entry(f)->tags->get(0), FgTag::Invalid)
            << "node " << n;
    }
    EXPECT_GE(rig.m.node(0).controller().stats().invalsSent, 2u);
    // Writer's tag is Exclusive.
    auto &c3 = rig.m.node(3).controller();
    FrameNum f3 = c3.pit().frameOf(rig.gp(0));
    ASSERT_NE(f3, kInvalidFrame);
    EXPECT_EQ(c3.pit().entry(f3)->tags->get(0), FgTag::Exclusive);
}

TEST(Protocol, ThreePartyReadFetchesFromOwner)
{
    Rig rig;
    rig.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() == 2) // node 1 becomes owner of page 0's line
                co_await pp.write(r.va(0));
            co_await pp.barrier(1);
            if (pp.id() == 4) // node 2 reads: home 0 must fetch from 1
                co_await pp.read(r.va(0));
        }(p, rig);
    });

    auto d = rig.m.node(0).controller().directory().line(rig.gp(0), 0);
    EXPECT_EQ(d.state(), DirState::Shared);
    EXPECT_TRUE(d.isSharer(1));
    EXPECT_TRUE(d.isSharer(2));
    EXPECT_GE(rig.m.node(1).controller().stats().fetchesServed, 1u);
}

TEST(Protocol, UpgradeAvoidsDataFetch)
{
    Rig rig;
    std::uint64_t rm_before = 0;
    rig.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r, std::uint64_t &rm) -> CoTask {
            if (pp.id() == 2)
                co_await pp.read(r.va(0)); // node 1 shares
            co_await pp.barrier(1);
            if (pp.id() == 2) {
                rm = r.m.node(1).controller().stats().remoteMisses;
                co_await pp.write(r.va(0)); // upgrade in place
            }
        }(p, rig, rm_before);
    });

    auto &c1 = rig.m.node(1).controller();
    EXPECT_GE(c1.stats().upgrades, 1u);
    EXPECT_EQ(c1.stats().remoteMisses, rm_before); // no data moved
    auto d = rig.m.node(0).controller().directory().line(rig.gp(0), 0);
    EXPECT_EQ(d.state(), DirState::Owned);
    EXPECT_EQ(d.owner(), 1u);
}

TEST(Protocol, LaNumaClientMapsImaginaryFrame)
{
    MachineConfig cfg;
    cfg.policy = PolicyKind::LaNuma;
    Rig rig(cfg);
    rig.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() == 2)
                co_await pp.read(r.va(1)); // page 1 homed at node 1?? no:
            co_return;
        }(p, rig);
    });
    // Page 1 is homed at node 1; proc 2 lives at node 1, so that was a
    // home fault.  Use page 2 at node 1 instead for a client mapping.
    Rig rig2(cfg);
    rig2.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() == 2) // node 1; page 0 homed at node 0
                co_await pp.read(r.va(0));
            co_return;
        }(p, rig2);
    });
    auto &c1 = rig2.m.node(1).controller();
    FrameNum f = c1.pit().frameOf(rig2.gp(0));
    ASSERT_NE(f, kInvalidFrame);
    EXPECT_GE(f, kImaginaryFrameBase);
    EXPECT_EQ(c1.pit().entry(f)->mode, PageMode::LaNuma);
    EXPECT_EQ(c1.pit().entry(f)->tags, nullptr);
}

TEST(Protocol, ClientPageOutWritesBackAndUnmaps)
{
    Rig rig;
    rig.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() == 2) {
                co_await pp.write(r.va(0));      // node 1 owns the line
                co_await pp.write(r.va(0, 128)); // and another line
            }
            co_return;
        }(p, rig);
    });
    Kernel &k1 = rig.m.node(1).kernel();
    // Drive the page-out directly.
    bool done = false;
    auto drive = [&]() -> FireAndForget {
        co_await k1.pageOutClient(rig.gp(0), false);
        done = true;
    };
    drive();
    rig.m.eventQueue().runAll();
    ASSERT_TRUE(done);
    EXPECT_EQ(k1.stats().clientPageOuts, 1u);
    EXPECT_EQ(rig.m.node(1).controller().pit().frameOf(rig.gp(0)),
              kInvalidFrame);
    // Home directory no longer lists node 1 anywhere on that page.
    auto pg = rig.m.node(0).controller().directory().page(rig.gp(0));
    ASSERT_TRUE(pg);
    for (std::uint32_t li = 0; li < pg.size(); ++li) {
        auto d = pg.line(li);
        EXPECT_FALSE(d.state() == DirState::Owned && d.owner() == 1);
        EXPECT_FALSE(d.isSharer(1));
    }
    EXPECT_GE(rig.m.node(1).controller().stats().writebacksSent, 2u);
}

TEST(Protocol, HomePageStatusFlagSkipsSecondPageIn)
{
    Rig rig;
    rig.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() == 2)
                co_await pp.read(r.va(0));
            co_return;
        }(p, rig);
    });
    Kernel &k1 = rig.m.node(1).kernel();
    const std::uint64_t served_before =
        rig.m.node(0).kernel().stats().pageInRequestsServed;

    // Page out, then refault: the cached home info must be used.
    bool done = false;
    auto drive = [&]() -> FireAndForget {
        co_await k1.pageOutClient(rig.gp(0), false);
        FrameNum f = kInvalidFrame;
        co_await k1.handleFault(k1.vpageOf(rig.gp(0)), &f);
        EXPECT_NE(f, kInvalidFrame);
        done = true;
    };
    drive();
    rig.m.eventQueue().runAll();
    ASSERT_TRUE(done);
    EXPECT_EQ(k1.stats().faultsCachedHome, 1u);
    EXPECT_EQ(rig.m.node(0).kernel().stats().pageInRequestsServed,
              served_before);
}

TEST(Protocol, FirewallRejectsWildWriteback)
{
    Rig rig;
    rig.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() == 0)
                co_await pp.write(r.va(0));
            co_return;
        }(p, rig);
    });
    auto &home = rig.m.node(0).controller();
    FrameNum hf = home.pit().frameOf(rig.gp(0));
    ASSERT_NE(hf, kInvalidFrame);
    // Allow only nodes 0 and 1 to write this page remotely.
    home.pit().entry(hf)->capabilities.add(0);
    home.pit().entry(hf)->capabilities.add(1);

    // Craft a forged ownership-less writeback from node 2.
    Msg wild;
    wild.type = MsgType::Writeback;
    wild.src = 2;
    wild.dst = 0;
    wild.gpage = rig.gp(0);
    wild.lineIdx = 0;
    wild.dirty = true;
    rig.m.route(std::move(wild));
    rig.m.eventQueue().runAll();

    EXPECT_EQ(home.stats().firewallRejects, 1u);
    EXPECT_EQ(home.pit().rejectedWrites(), 1u);
    // Directory state is untouched (still Owned by home node 0).
    auto d = home.directory().line(rig.gp(0), 0);
    EXPECT_EQ(d.state(), DirState::Owned);
    EXPECT_EQ(d.owner(), 0u);
}

TEST(Protocol, PrivatePagesStayLocal)
{
    Rig rig;
    rig.run([&](Proc &p) -> CoTask {
        return [](Proc &pp) -> CoTask {
            PrivArena priv(pp.id());
            SimArray a{priv.alloc(4 * kPageBytes), 8};
            for (int i = 0; i < 100; ++i)
                co_await pp.write(a.at(i * 67 % 2048));
        }(p);
    });
    std::uint64_t total_net = rig.m.network().messages();
    EXPECT_EQ(total_net, 0u); // purely node-local activity
    for (NodeId n = 0; n < 4; ++n)
        EXPECT_EQ(rig.m.node(n).controller().stats().remoteMisses, 0u);
}

} // namespace
} // namespace prism
