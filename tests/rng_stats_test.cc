/**
 * @file
 * Unit tests for the deterministic RNG, the scoped metric registry and
 * the histogram.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>

#include "obs/metrics.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace prism {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(37), 37u);
}

TEST(Rng, RangeIsInclusive)
{
    Rng r(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(r.range(5, 8));
    EXPECT_EQ(seen, (std::set<std::uint64_t>{5, 6, 7, 8}));
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(3);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng r(9);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    r.shuffle(v);
    EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(MetricRegistry, BindQueryAndDump)
{
    MetricRegistry reg;
    ScopedCounter a, b;
    reg.bind(MetricLabels{"ctrl", 0, "misses", "count"}, &a,
             "remote misses");
    reg.bind(MetricLabels{"ctrl", 1, "misses", "count"}, &b);
    a += 5;
    b += 7;
    EXPECT_EQ(reg.get("node0.ctrl.misses"), 5u);
    EXPECT_EQ(reg.get("nope"), std::nullopt);
    ++a;
    EXPECT_EQ(reg.get("node0.ctrl.misses"), 6u); // live handle
    EXPECT_EQ(reg.value("ctrl", 1, "misses"), 7u);
    EXPECT_EQ(reg.sum("ctrl", "misses"), 13u);
    std::ostringstream os;
    reg.dump(os);
    EXPECT_NE(os.str().find("node0.ctrl.misses 6"), std::string::npos);
    EXPECT_NE(os.str().find("# remote misses"), std::string::npos);
}

TEST(MetricRegistry, SealedGetIsIndexed)
{
    MetricRegistry reg;
    ScopedCounter a;
    reg.bind(MetricLabels{"ctrl", 3, "remoteMisses", "count"}, &a);
    EXPECT_FALSE(reg.sealed());
    reg.seal();
    EXPECT_TRUE(reg.sealed());
    a += 2;
    EXPECT_EQ(reg.get("node3.ctrl.remoteMisses"), 2u);
    EXPECT_EQ(reg.get("node3.ctrl.nope"), std::nullopt);
}

TEST(MetricRegistry, HandleOutlivingRegistryIsSafe)
{
    ScopedCounter a;
    {
        MetricRegistry reg;
        reg.bind(MetricLabels{"ctrl", 0, "x", "count"}, &a);
        ++a;
    }
    // The registry detached the handle on destruction; the handle
    // keeps working as a plain counter.
    ++a;
    EXPECT_EQ(a.value(), 2u);
}

TEST(MetricRegistry, RegistryOutlivingHandleRetiresValue)
{
    MetricRegistry reg;
    {
        ScopedCounter a;
        reg.bind(MetricLabels{"kernel", 2, "faults", "count"}, &a);
        a += 41;
        ++a;
    }
    // The handle retired its final value; label queries still answer.
    EXPECT_EQ(reg.get("node2.kernel.faults"), 42u);
    EXPECT_EQ(reg.sum("kernel", "faults"), 42u);
}

TEST(MetricRegistry, SumLeafAggregatesDottedNames)
{
    MetricRegistry reg;
    ScopedCounter p0, p1, other;
    reg.bind(MetricLabels{"proc", 0, "p0.loads", "count"}, &p0);
    reg.bind(MetricLabels{"proc", 0, "p1.loads", "count"}, &p1);
    reg.bind(MetricLabels{"proc", 0, "p0.stores", "count"}, &other);
    p0 += 3;
    p1 += 4;
    other += 100;
    EXPECT_EQ(reg.sumLeaf("proc", "loads"), 7u);
    EXPECT_EQ(reg.sumLeaf("proc", "stores"), 100u);
}

TEST(MetricRegistry, GaugeSamplesAreCachedAcrossRetirement)
{
    MetricRegistry reg;
    double source = 1.5;
    {
        ScopedGauge g;
        reg.bind(MetricLabels{"kernel", 0, "util", "fraction"}, &g,
                 [&source] { return source; });
        reg.sampleGauges();
        source = 2.5;
        reg.sampleGauges();
    }
    ASSERT_EQ(reg.gauges().size(), 1u);
    EXPECT_DOUBLE_EQ(reg.gauges()[0].value, 2.5);
}

void
bindDuplicateMetric()
{
    MetricRegistry reg;
    ScopedCounter a, b;
    reg.bind(MetricLabels{"ctrl", 0, "misses", "count"}, &a);
    reg.bind(MetricLabels{"ctrl", 0, "misses", "count"}, &b);
}

void
bindAfterSeal()
{
    MetricRegistry reg;
    reg.seal();
    ScopedCounter a;
    reg.bind(MetricLabels{"ctrl", 0, "late", "count"}, &a);
}

TEST(MetricRegistryDeathTest, DuplicateRegistrationIsFatal)
{
    EXPECT_EXIT(bindDuplicateMetric(), ::testing::ExitedWithCode(1),
                "duplicate metric registration");
}

TEST(MetricRegistryDeathTest, BindAfterSealIsFatal)
{
    EXPECT_EXIT(bindAfterSeal(), ::testing::ExitedWithCode(1),
                "registered after the registry");
}

TEST(Histogram, BucketsAndMoments)
{
    Histogram h({10, 100, 1000});
    h.sample(5);
    h.sample(50);
    h.sample(500);
    h.sample(5000);
    h.sample(7);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.max(), 5000u);
    EXPECT_EQ(h.counts()[0], 2u); // [0,10)
    EXPECT_EQ(h.counts()[1], 1u); // [10,100)
    EXPECT_EQ(h.counts()[2], 1u); // [100,1000)
    EXPECT_EQ(h.counts()[3], 1u); // [1000,inf)
    EXPECT_NEAR(h.mean(), (5 + 50 + 500 + 5000 + 7) / 5.0, 1e-9);
}

TEST(Histogram, QuantileEmptyIsZero)
{
    Histogram h({10, 100});
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, QuantileInterpolatesWithinBucket)
{
    Histogram h({10, 100, 1000});
    // 10 samples all in [10, 100), spanning the bucket.
    h.sample(10);
    h.sample(99);
    for (int i = 0; i < 8; ++i)
        h.sample(50);
    // Median rank 5 of 10 -> halfway through the bucket [10, 100).
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 55.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);
    // Interpolation toward the bucket's upper bound (100) is clamped
    // to the largest observed sample.
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 99.0);
    // The error bound: the true p50 (50) is within one bucket width.
    EXPECT_NEAR(h.quantile(0.5), 50.0, 100.0 - 10.0);
}

TEST(Histogram, QuantileClampsToObservedRange)
{
    // A lone sample sits somewhere inside its bucket, not at the
    // bucket midpoint: every quantile reports the sample itself.
    Histogram h({10, 100, 1000});
    h.sample(42);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 42.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 42.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 42.0);
}

TEST(Histogram, QuantileOverflowBucketUsesMax)
{
    Histogram h({10});
    h.sample(5000);
    h.sample(5000);
    // Both samples in the overflow bucket; interpolation can never
    // exceed the largest observed value.
    EXPECT_LE(h.quantile(0.99), 5000.0);
    EXPECT_GE(h.quantile(0.99), 10.0);
}

TEST(Histogram, MergeAccumulates)
{
    Histogram a({10, 100});
    Histogram b({10, 100});
    a.sample(5);
    a.sample(50);
    b.sample(50);
    b.sample(500);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.max(), 500u);
    EXPECT_EQ(a.counts()[0], 1u);
    EXPECT_EQ(a.counts()[1], 2u);
    EXPECT_EQ(a.counts()[2], 1u);
    EXPECT_NEAR(a.mean(), (5 + 50 + 50 + 500) / 4.0, 1e-9);
}

} // namespace
} // namespace prism
