/**
 * @file
 * Unit tests for the deterministic RNG, the stat registry and the
 * histogram.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "sim/rng.hh"
#include "sim/stats.hh"

namespace prism {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(37), 37u);
}

TEST(Rng, RangeIsInclusive)
{
    Rng r(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(r.range(5, 8));
    EXPECT_EQ(seen, (std::set<std::uint64_t>{5, 6, 7, 8}));
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(3);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng r(9);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    r.shuffle(v);
    EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(StatRegistry, GetAndDump)
{
    StatRegistry reg;
    std::uint64_t a = 5, b = 7;
    reg.add("node0.ctrl.misses", &a, "remote misses");
    reg.add("node1.ctrl.misses", &b);
    EXPECT_EQ(reg.get("node0.ctrl.misses"), 5u);
    EXPECT_EQ(reg.get("nope"), std::nullopt);
    a = 6;
    EXPECT_EQ(reg.get("node0.ctrl.misses"), 6u); // live reference
    EXPECT_EQ(reg.sumBySuffix(".misses"), 13u);
    EXPECT_EQ(reg.sumByPrefix("node1"), 7u);
    std::ostringstream os;
    reg.dump(os);
    EXPECT_NE(os.str().find("node0.ctrl.misses 6"), std::string::npos);
    EXPECT_NE(os.str().find("# remote misses"), std::string::npos);
}

TEST(Histogram, BucketsAndMoments)
{
    Histogram h({10, 100, 1000});
    h.sample(5);
    h.sample(50);
    h.sample(500);
    h.sample(5000);
    h.sample(7);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.max(), 5000u);
    EXPECT_EQ(h.counts()[0], 2u); // [0,10)
    EXPECT_EQ(h.counts()[1], 1u); // [10,100)
    EXPECT_EQ(h.counts()[2], 1u); // [100,1000)
    EXPECT_EQ(h.counts()[3], 1u); // [1000,inf)
    EXPECT_NEAR(h.mean(), (5 + 50 + 500 + 5000 + 7) / 5.0, 1e-9);
}

} // namespace
} // namespace prism
