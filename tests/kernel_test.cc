/**
 * @file
 * Kernel paging-path tests: home page-outs with client fan-out, disk
 * refaults, deferred page-ins, segment binding and address math.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "workload/workload.hh"

namespace prism {
namespace {

constexpr std::uint64_t kKey = 0x05;

struct Rig {
    Rig()
        : m(makeCfg())
    {
        gsid = m.shmget(kKey, 64 * kPageBytes);
        m.shmatAll(kSharedVsid, gsid);
    }

    static MachineConfig
    makeCfg()
    {
        MachineConfig cfg;
        cfg.numNodes = 4;
        cfg.procsPerNode = 2;
        cfg.diskLatency = 500; // keep tests fast
        return cfg;
    }

    VAddr
    va(std::uint64_t pnum, std::uint64_t off = 0) const
    {
        return makeVAddr(kSharedVsid, pnum, off);
    }

    GPage
    gp(std::uint64_t pnum) const
    {
        return (gsid << kPageNumBits) | pnum;
    }

    Machine m;
    std::uint64_t gsid = 0;
};

TEST(Kernel, BindingRoundTrips)
{
    Rig rig;
    Kernel &k = rig.m.node(2).kernel();
    GPage gp = kInvalidGPage;
    VPage vp = rig.va(7).page();
    ASSERT_TRUE(k.globalPageOf(vp, &gp));
    EXPECT_EQ(gp, rig.gp(7));
    EXPECT_EQ(k.vpageOf(gp), vp);
    // Private pages are not global.
    GPage dummy;
    EXPECT_FALSE(k.globalPageOf(makeVAddr(0x123, 0, 0).page(), &dummy));
}

TEST(Kernel, HomePageOutFlushesClientsAndGoesToDisk)
{
    Rig rig;
    // Node 0 (home of page 0) writes; nodes 1 and 2 share the page.
    rig.m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() == 0)
                co_await pp.write(r.va(0));
            co_await pp.barrier(1);
            if (pp.id() == 2 || pp.id() == 4)
                co_await pp.read(r.va(0));
        }(p, rig);
    });
    Kernel &home = rig.m.node(0).kernel();
    bool done = false;
    auto drive = [&]() -> FireAndForget {
        co_await home.pageOutHome(rig.gp(0));
        done = true;
    };
    drive();
    rig.m.eventQueue().runAll();
    ASSERT_TRUE(done);
    EXPECT_EQ(home.stats().homePageOuts, 1u);
    // The page is gone everywhere.
    for (NodeId n = 0; n < 4; ++n) {
        EXPECT_EQ(rig.m.node(n).controller().pit().frameOf(rig.gp(0)),
                  kInvalidFrame)
            << "node " << n;
    }
    EXPECT_FALSE(rig.m.node(0).controller().isDynHome(rig.gp(0)));
    // Clients performed page-outs in response to the fan-out.
    std::uint64_t client_outs =
        rig.m.node(1).kernel().stats().clientPageOuts +
        rig.m.node(2).kernel().stats().clientPageOuts;
    EXPECT_EQ(client_outs, 2u);
}

TEST(Kernel, RefaultAfterHomePageOutPaysDiskAndWorks)
{
    Rig rig;
    rig.m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() == 0)
                co_await pp.write(r.va(0));
            co_return;
        }(p, rig);
    });
    Kernel &home = rig.m.node(0).kernel();
    auto drive = [&]() -> FireAndForget {
        co_await home.pageOutHome(rig.gp(0));
    };
    drive();
    rig.m.eventQueue().runAll();

    // A client fault now pages the home copy back in from disk.
    rig.m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() == 2)
                co_await pp.read(r.va(0));
            co_return;
        }(p, rig);
    });
    EXPECT_TRUE(rig.m.node(0).controller().isDynHome(rig.gp(0)));
    FrameNum f = rig.m.node(1).controller().pit().frameOf(rig.gp(0));
    EXPECT_NE(f, kInvalidFrame);
}

TEST(Kernel, FaultsFromAllProcsOfANodeShareOneMapping)
{
    Rig rig;
    rig.m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            // Both procs of node 1 fault page 0 simultaneously.
            if (pp.id() / 2 == 1)
                co_await pp.read(r.va(0, pp.id() * 128));
            co_return;
        }(p, rig);
    });
    Kernel &k = rig.m.node(1).kernel();
    EXPECT_EQ(k.stats().faultsClient, 1u)
        << "second faulting processor must reuse the mapping";
    EXPECT_EQ(k.realFramesLive(), 1u);
}

TEST(Kernel, PrivateFramesAreNodeLocalAndCounted)
{
    Rig rig;
    rig.m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp) -> CoTask {
            PrivArena priv(pp.id());
            SimArray a{priv.alloc(2 * kPageBytes, kPageBytes), 8};
            co_await pp.write(a.at(0));
            co_await pp.write(a.at(kPageBytes / 8));
        }(p);
    });
    for (NodeId n = 0; n < 4; ++n) {
        Kernel &k = rig.m.node(n).kernel();
        EXPECT_EQ(k.stats().faultsPrivate, 4u); // 2 procs x 2 pages
        EXPECT_EQ(k.realFramesLive(), 4u);
    }
}

TEST(Kernel, ShootdownClearsMicroTranslationCache)
{
    Rig rig;
    // Warm p0's one-entry translation cache (and TLB) on page 0.
    rig.m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() == 0)
                co_await pp.write(r.va(0));
            co_return;
        }(p, rig);
    });
    Proc &p0 = rig.m.node(0).proc(0);
    const std::uint64_t refills = p0.stats().tlbRefills.value();

    // A kernel-style remap that keeps the frame (page-mode change)
    // shoots the translation down without touching the caches.  The
    // next access must re-walk the page table; a stale micro-TLB
    // would instead translate silently -- and, when the frame DOES
    // change, commit to dead memory.
    p0.shootdown(rig.va(0).page());
    rig.m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() == 0)
                co_await pp.read(r.va(0));
            co_return;
        }(p, rig);
    });
    EXPECT_EQ(p0.stats().tlbRefills.value(), refills + 1)
        << "access after shootdown skipped the page-table walk";
}

TEST(Kernel, ReaccessAfterPageOutTakesAFreshFault)
{
    Rig rig;
    rig.m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() == 0)
                co_await pp.write(r.va(0));
            co_return;
        }(p, rig);
    });
    Kernel &home = rig.m.node(0).kernel();
    auto drive = [&]() -> FireAndForget {
        co_await home.pageOutHome(rig.gp(0));
    };
    drive();
    rig.m.eventQueue().runAll();

    // The mapping is gone; the re-access must fault and install a
    // fresh translation rather than ride any cached one.
    Proc &p0 = rig.m.node(0).proc(0);
    const std::uint64_t faults = p0.stats().pageFaults.value();
    rig.m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() == 0)
                co_await pp.write(r.va(0));
            co_return;
        }(p, rig);
    });
    EXPECT_EQ(p0.stats().pageFaults.value(), faults + 1);
    EXPECT_TRUE(home.pageTable().mapped(rig.va(0).page()));
}

TEST(Kernel, UtilizationReflectsTouchedLines)
{
    Rig rig;
    rig.m.run([&](Proc &p) -> CoTask {
        return [](Proc &pp, Rig &r) -> CoTask {
            if (pp.id() == 0) {
                // Touch exactly 8 of 64 lines of page 0.
                for (int l = 0; l < 8; ++l)
                    co_await pp.write(
                        r.va(0, static_cast<std::uint64_t>(l) * 64));
            }
            co_return;
        }(p, rig);
    });
    double util = rig.m.node(0).kernel().averageUtilization();
    EXPECT_NEAR(util, 8.0 / 64.0, 1e-9);
}

} // namespace
} // namespace prism
