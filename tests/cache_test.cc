/**
 * @file
 * Unit tests for the set-associative MESI cache model.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace prism {
namespace {

TEST(Cache, MissOnEmpty)
{
    SetAssocCache c(1024, 2, 64);
    EXPECT_EQ(c.lookup(0x1000), Mesi::Invalid);
    EXPECT_FALSE(c.contains(0x1000));
    EXPECT_EQ(c.validLines(), 0u);
}

TEST(Cache, InsertThenHitAnywhereInLine)
{
    SetAssocCache c(1024, 2, 64);
    c.insert(0x1000, Mesi::Shared);
    EXPECT_EQ(c.lookup(0x1000), Mesi::Shared);
    EXPECT_EQ(c.lookup(0x103F), Mesi::Shared); // same line
    EXPECT_EQ(c.lookup(0x1040), Mesi::Invalid); // next line
}

TEST(Cache, SetStateAndInvalidate)
{
    SetAssocCache c(1024, 2, 64);
    c.insert(0x2000, Mesi::Exclusive);
    c.setState(0x2000, Mesi::Modified);
    EXPECT_EQ(c.lookup(0x2000), Mesi::Modified);
    EXPECT_EQ(c.invalidate(0x2000), Mesi::Modified);
    EXPECT_EQ(c.lookup(0x2000), Mesi::Invalid);
    EXPECT_EQ(c.invalidate(0x2000), Mesi::Invalid); // idempotent
}

TEST(Cache, LruEvictionOrder)
{
    // 2-way, 64B lines, 2 sets (256 B).
    SetAssocCache c(256, 2, 64);
    // All three map to set 0 (stride = 128).
    c.insert(0x0000, Mesi::Shared);
    c.insert(0x0080, Mesi::Shared);
    c.touch(0x0000); // 0x0000 is now MRU
    auto v = c.insert(0x0100, Mesi::Shared);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->lineAddr, 0x0080u);
    EXPECT_TRUE(c.contains(0x0000));
    EXPECT_TRUE(c.contains(0x0100));
}

TEST(Cache, DirectMappedConflicts)
{
    SetAssocCache c(512, 1, 64); // 8 sets
    c.insert(0x0000, Mesi::Modified);
    auto v = c.insert(0x0200, Mesi::Shared); // same set (stride 512)
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->lineAddr, 0x0000u);
    EXPECT_EQ(v->state, Mesi::Modified);
}

TEST(Cache, OverwriteSameLineNoVictim)
{
    SetAssocCache c(256, 2, 64);
    c.insert(0x0000, Mesi::Shared);
    auto v = c.insert(0x0000, Mesi::Modified);
    EXPECT_FALSE(v.has_value());
    EXPECT_EQ(c.lookup(0x0000), Mesi::Modified);
    EXPECT_EQ(c.validLines(), 1u);
}

TEST(Cache, PeekVictimDoesNotEvict)
{
    SetAssocCache c(256, 2, 64);
    c.insert(0x0000, Mesi::Shared);
    c.insert(0x0080, Mesi::Exclusive);
    auto v = c.peekVictim(0x0100);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->lineAddr, 0x0000u);
    EXPECT_TRUE(c.contains(0x0000));
    EXPECT_TRUE(c.contains(0x0080));
    EXPECT_FALSE(c.peekVictim(0x0000).has_value()); // present: no victim
}

TEST(Cache, InvalidateFrameSweepsAllLinesOfPage)
{
    SetAssocCache c(16 * 1024, 4, 64);
    const FrameNum frame = 3;
    for (std::uint64_t off = 0; off < kPageBytes; off += 64)
        c.insert((frame << kPageShift) | off, Mesi::Shared);
    c.insert(4ULL << kPageShift, Mesi::Modified); // another frame
    auto victims = c.invalidateFrame(frame);
    EXPECT_EQ(victims.size(), kPageBytes / 64);
    EXPECT_EQ(c.validLines(), 1u);
    EXPECT_TRUE(c.contains(4ULL << kPageShift));
}

class CacheParamTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint32_t>>
{
};

TEST_P(CacheParamTest, CapacityIsRespected)
{
    const auto [size, assoc] = GetParam();
    SetAssocCache c(size, assoc, 64);
    const std::uint32_t lines = size / 64;
    // Insert twice the capacity; valid lines never exceed capacity.
    for (std::uint32_t i = 0; i < 2 * lines; ++i) {
        c.insert(static_cast<std::uint64_t>(i) * 64, Mesi::Shared);
        EXPECT_LE(c.validLines(), lines);
    }
    EXPECT_EQ(c.validLines(), lines);
}

TEST_P(CacheParamTest, SequentialFillThenFullHit)
{
    const auto [size, assoc] = GetParam();
    SetAssocCache c(size, assoc, 64);
    const std::uint32_t lines = size / 64;
    for (std::uint32_t i = 0; i < lines; ++i)
        c.insert(static_cast<std::uint64_t>(i) * 64, Mesi::Exclusive);
    for (std::uint32_t i = 0; i < lines; ++i)
        EXPECT_EQ(c.lookup(static_cast<std::uint64_t>(i) * 64),
                  Mesi::Exclusive);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheParamTest,
    ::testing::Values(std::make_tuple(8u * 1024, 1u),
                      std::make_tuple(8u * 1024, 2u),
                      std::make_tuple(32u * 1024, 4u),
                      std::make_tuple(32u * 1024, 8u)));

TEST(Cache, MesiNames)
{
    EXPECT_STREQ(mesiName(Mesi::Invalid), "I");
    EXPECT_STREQ(mesiName(Mesi::Modified), "M");
    EXPECT_STREQ(mesiName(Mesi::Owned), "O");
    EXPECT_STREQ(mesiName(Mesi::Forward), "F");
}

// The tag store is protocol-agnostic payload storage: the widened
// states (Owned from MOESI, Forward from MESIF) must round-trip
// through every accessor exactly like the classic three.
TEST(Cache, WidenedStatesRoundTrip)
{
    SetAssocCache c(512, 1, 64); // direct-mapped, 8 sets
    c.insert(0x0000, Mesi::Owned);
    c.insert(0x0080, Mesi::Forward);
    EXPECT_EQ(c.lookup(0x0000), Mesi::Owned);
    EXPECT_EQ(c.lookup(0x0080), Mesi::Forward);

    c.setState(0x0080, Mesi::Owned);
    EXPECT_EQ(c.lookup(0x0080), Mesi::Owned);
    c.setState(0x0080, Mesi::Forward);

    // Victims carry the widened state out (stride 512 conflicts).
    auto v = c.insert(0x0200, Mesi::Shared);
    ASSERT_TRUE(v);
    EXPECT_EQ(v->lineAddr, 0x0000u);
    EXPECT_EQ(v->state, Mesi::Owned);

    // Frame sweeps report them too.
    auto victims = c.invalidateFrame(0);
    ASSERT_EQ(victims.size(), 2u);
    EXPECT_EQ(c.validLines(), 0u);

    c.insert(0x0040, Mesi::Forward);
    EXPECT_EQ(c.invalidate(0x0040), Mesi::Forward);
}

// The permission-strength helpers order states for merging split
// L1/L2 views; numeric enum order is NOT the permission order once
// Owned/Forward exist.
TEST(Cache, LineStrengthHelpers)
{
    // I < S < F < E < O < M.
    EXPECT_LT(lineStrength(Mesi::Invalid), lineStrength(Mesi::Shared));
    EXPECT_LT(lineStrength(Mesi::Shared), lineStrength(Mesi::Forward));
    EXPECT_LT(lineStrength(Mesi::Forward),
              lineStrength(Mesi::Exclusive));
    EXPECT_LT(lineStrength(Mesi::Exclusive), lineStrength(Mesi::Owned));
    EXPECT_LT(lineStrength(Mesi::Owned), lineStrength(Mesi::Modified));

    EXPECT_EQ(strongerLine(Mesi::Owned, Mesi::Shared), Mesi::Owned);
    EXPECT_EQ(strongerLine(Mesi::Shared, Mesi::Owned), Mesi::Owned);
    EXPECT_EQ(strongerLine(Mesi::Forward, Mesi::Exclusive),
              Mesi::Exclusive);
    // Ties keep the first argument.
    EXPECT_EQ(strongerLine(Mesi::Shared, Mesi::Shared), Mesi::Shared);

    EXPECT_TRUE(ownerClass(Mesi::Modified));
    EXPECT_TRUE(ownerClass(Mesi::Exclusive));
    EXPECT_TRUE(ownerClass(Mesi::Owned));
    EXPECT_FALSE(ownerClass(Mesi::Forward));
    EXPECT_FALSE(ownerClass(Mesi::Shared));
    EXPECT_FALSE(ownerClass(Mesi::Invalid));

    EXPECT_TRUE(dirtyLine(Mesi::Modified));
    EXPECT_TRUE(dirtyLine(Mesi::Owned));
    EXPECT_FALSE(dirtyLine(Mesi::Exclusive));
    EXPECT_FALSE(dirtyLine(Mesi::Forward));
    EXPECT_FALSE(dirtyLine(Mesi::Shared));
}

} // namespace
} // namespace prism
