/**
 * @file
 * Property-based coherence tests: random shared-memory traffic from
 * every processor under every policy, then a full sweep of protocol
 * invariants over the quiescent machine state.
 *
 * Invariants checked (per global line):
 *  I1  exactly one node holds the directory page (single dynamic home)
 *  I2  Owned(o): no other node has a valid fine-grain tag, and no
 *      processor cache outside o holds the line
 *  I3  Shared: no node has an Exclusive tag; every node with a Shared
 *      tag is in the sharer set; no processor cache holds M/E
 *  I4  Uncached: no valid tags, no cached copies anywhere
 *  I5  a processor cache holding M/E implies its node is the owner
 *      (global pages) and no other processor holds the line
 *  I6  L1 contents are a subset of L2 contents (inclusion)
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <tuple>

#include "check/oracle.hh"
#include "core/machine.hh"
#include "sim/rng.hh"
#include "workload/workload.hh"

namespace prism {
namespace {

struct Cfg {
    PolicyKind policy;
    std::uint64_t seed;
    std::uint64_t cap; // client S-COMA frame cap (0 = unlimited)
    bool migrate = false; // lazy page migration enabled
};

class CoherenceProperty : public ::testing::TestWithParam<Cfg>
{
};

CoTask
chaos(Proc &p, std::uint64_t gsid, std::uint32_t pages,
      std::uint64_t seed, std::uint32_t ops)
{
    Rng rng(seed * 7919 + p.id());
    for (std::uint32_t i = 0; i < ops; ++i) {
        const std::uint64_t pnum = rng.below(pages);
        const std::uint64_t off = rng.below(kPageBytes / 8) * 8;
        VAddr va = makeVAddr(kSharedVsid, pnum, off);
        if (rng.below(100) < 40)
            co_await p.write(va);
        else
            co_await p.read(va);
        p.compute(rng.below(20));
        if (i % 64 == 63)
            co_await p.barrier(0);
        (void)gsid;
    }
    // Everyone must hit the same number of barrier episodes.
    co_await p.barrier(1);
}

/** Full invariant sweep over the quiescent machine. */
void
checkInvariants(Machine &m)
{
    const std::uint32_t nodes = m.numNodes();
    const LineGeometry geo(m.config().lineBytes);

    // Gather all directory pages and check I1.
    std::map<GPage, NodeId> dir_home;
    for (NodeId n = 0; n < nodes; ++n) {
        auto &ctrl = m.node(n).controller();
        for (FrameNum f : ctrl.pit().globalFrames()) {
            const PitEntry *e = ctrl.pit().entry(f);
            if (ctrl.directory().hasPage(e->gpage)) {
                auto [it, fresh] =
                    dir_home.emplace(e->gpage, n);
                EXPECT_TRUE(fresh || it->second == n)
                    << "two dynamic homes for page " << std::hex
                    << e->gpage;
            }
        }
    }

    // Per-node maps: gpage -> (frame, entry) and proc cache contents
    // translated to global lines.
    struct NodeView {
        std::map<GPage, const PitEntry *> mapped;
        std::map<GPage, FrameNum> frameOf;
        // global line -> strongest proc state at this node
        std::map<GLine, Mesi> cached;
    };
    std::vector<NodeView> views(nodes);
    for (NodeId n = 0; n < nodes; ++n) {
        auto &node = m.node(n);
        auto &pit = node.controller().pit();
        std::map<FrameNum, GPage> frame2page;
        for (FrameNum f : pit.globalFrames()) {
            const PitEntry *e = pit.entry(f);
            views[n].mapped[e->gpage] = e;
            views[n].frameOf[e->gpage] = f;
            frame2page[f] = e->gpage;
        }
        for (std::uint32_t pi = 0; pi < node.numProcs(); ++pi) {
            Proc &proc = node.proc(pi);
            // I6: inclusion.
            for (auto [addr, s1] : proc.l1().snapshot()) {
                EXPECT_NE(proc.l2().lookup(addr), Mesi::Invalid)
                    << "L1 line not in L2 (inclusion)";
                (void)s1;
            }
            for (auto [addr, s2] : proc.l2().snapshot()) {
                Mesi s1 = proc.l1().lookup(addr);
                Mesi merged = s1 > s2 ? s1 : s2;
                auto it = frame2page.find(addr >> kPageShift);
                if (it == frame2page.end())
                    continue; // private line
                GLine gl = geo.lineOf(it->second,
                                      geo.lineIndex(addr));
                Mesi &cur = views[n].cached[gl];
                if (merged > cur)
                    cur = merged;
            }
        }
    }

    // Per-line checks against the directory.
    for (auto [gp, home] : dir_home) {
        auto pg = m.node(home).controller().directory().page(gp);
        ASSERT_TRUE(pg);
        for (std::uint32_t li = 0; li < pg.size(); ++li) {
            const DirEntry d = pg.line(li).toEntry();
            const GLine gl = geo.lineOf(gp, li);
            for (NodeId n = 0; n < nodes; ++n) {
                auto it = views[n].mapped.find(gp);
                FgTag tag = FgTag::Invalid;
                if (it != views[n].mapped.end() && it->second->tags)
                    tag = it->second->tags->get(li);
                EXPECT_NE(tag, FgTag::Transit)
                    << "Transit tag in quiescent state";
                Mesi cached = Mesi::Invalid;
                auto cit = views[n].cached.find(gl);
                if (cit != views[n].cached.end())
                    cached = cit->second;

                switch (d.state) {
                  case DirState::Owned:
                    if (n != d.owner) {
                        EXPECT_EQ(tag, FgTag::Invalid)
                            << "valid tag at non-owner node " << n;
                        EXPECT_EQ(cached, Mesi::Invalid)
                            << "cached copy at non-owner node " << n;
                    }
                    break;
                  case DirState::Shared:
                    EXPECT_NE(tag, FgTag::Exclusive)
                        << "Exclusive tag under Shared dir state";
                    if (tag == FgTag::Shared) {
                        EXPECT_TRUE(d.isSharer(n))
                            << "Shared tag at non-sharer node " << n;
                    }
                    EXPECT_NE(cached, Mesi::Modified)
                        << "M copy under Shared dir state";
                    EXPECT_NE(cached, Mesi::Exclusive)
                        << "E copy under Shared dir state";
                    break;
                  case DirState::Uncached:
                    EXPECT_EQ(tag, FgTag::Invalid)
                        << "valid tag under Uncached dir state";
                    EXPECT_EQ(cached, Mesi::Invalid)
                        << "cached copy under Uncached dir state";
                    break;
                }
                // I5: an M/E processor copy implies node ownership.
                if (cached == Mesi::Modified ||
                    cached == Mesi::Exclusive) {
                    EXPECT_TRUE(d.state == DirState::Owned &&
                                d.owner == n)
                        << "M/E proc copy without node ownership";
                }
            }
        }
    }
}

TEST_P(CoherenceProperty, RandomTrafficPreservesInvariants)
{
    const Cfg &c = GetParam();
    MachineConfig cfg;
    cfg.numNodes = 4;
    cfg.procsPerNode = 2;
    cfg.policy = c.policy;
    cfg.clientFrameCap = c.cap;
    cfg.seed = c.seed;
    cfg.migrationEnabled = c.migrate;
    cfg.migrationThreshold = 32; // migrate aggressively under churn
    // The in-flight oracle watches every transition while the
    // structural sweep below checks the quiescent end state.
    cfg.oracleMode = OracleMode::Continuous;
    cfg.oracleFatal = false;
    Machine m(cfg);
    std::uint64_t gsid = m.shmget(0xC0FFEE, 8 * kPageBytes);
    m.shmatAll(kSharedVsid, gsid);
    m.run([&](Proc &p) {
        return chaos(p, gsid, 8, c.seed, 400);
    });
    checkInvariants(m);
    EXPECT_EQ(m.oracle()->violationCount(), 0u)
        << m.oracle()->violations().front().what;
}

/**
 * Seed sweep: the same chaos run under a seed taken from
 * PRISM_PROPERTY_SEED.  tests/CMakeLists.txt registers one ctest entry
 * per seed so a failing seed shows up by name in the ctest summary;
 * the seed is also printed on any failure below.
 */
TEST(CoherenceSeedSweep, RandomTrafficPreservesInvariants)
{
    const char *env = std::getenv("PRISM_PROPERTY_SEED");
    if (!env)
        GTEST_SKIP() << "PRISM_PROPERTY_SEED not set";
    const std::uint64_t seed = std::strtoull(env, nullptr, 10);
    SCOPED_TRACE("PRISM_PROPERTY_SEED=" + std::string(env));

    // Rotate policy and cap with the seed so the sweep covers the
    // whole configuration space as it grows.
    static const Cfg kRotation[] = {
        Cfg{PolicyKind::Scoma, 0, 0},
        Cfg{PolicyKind::LaNuma, 0, 0},
        Cfg{PolicyKind::Scoma70, 0, 2},
        Cfg{PolicyKind::DynFcfs, 0, 3},
        Cfg{PolicyKind::DynUtil, 0, 2},
        Cfg{PolicyKind::DynLru, 0, 1},
        Cfg{PolicyKind::DynBoth, 0, 2},
        Cfg{PolicyKind::Scoma, 0, 0, true},
    };
    Cfg c = kRotation[seed % (sizeof(kRotation) / sizeof(kRotation[0]))];
    c.seed = seed * 0x9E3779B9u + 101;

    MachineConfig cfg;
    cfg.numNodes = 4;
    cfg.procsPerNode = 2;
    cfg.policy = c.policy;
    cfg.clientFrameCap = c.cap;
    cfg.seed = c.seed;
    cfg.migrationEnabled = c.migrate;
    cfg.migrationThreshold = 32;
    cfg.oracleMode = OracleMode::Continuous;
    cfg.oracleFatal = false;
    cfg.netJitterMax = seed % 3 ? 32 : 0; // mix jittered schedules in
    cfg.jitterSeed = seed;
    Machine m(cfg);
    std::uint64_t gsid = m.shmget(0xC0FFEE, 8 * kPageBytes);
    m.shmatAll(kSharedVsid, gsid);
    m.run([&](Proc &p) {
        return chaos(p, gsid, 8, c.seed, 400);
    });
    checkInvariants(m);
    EXPECT_EQ(m.oracle()->violationCount(), 0u)
        << m.oracle()->violations().front().what;
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, CoherenceProperty,
    ::testing::Values(
        Cfg{PolicyKind::Scoma, 1, 0}, Cfg{PolicyKind::Scoma, 2, 0},
        Cfg{PolicyKind::Scoma, 3, 0}, Cfg{PolicyKind::LaNuma, 1, 0},
        Cfg{PolicyKind::LaNuma, 2, 0}, Cfg{PolicyKind::LaNuma, 3, 0},
        Cfg{PolicyKind::Scoma70, 1, 3}, Cfg{PolicyKind::Scoma70, 2, 5},
        Cfg{PolicyKind::DynFcfs, 1, 3}, Cfg{PolicyKind::DynFcfs, 2, 5},
        Cfg{PolicyKind::DynUtil, 1, 3}, Cfg{PolicyKind::DynUtil, 2, 5},
        Cfg{PolicyKind::DynLru, 1, 3}, Cfg{PolicyKind::DynLru, 2, 5},
        Cfg{PolicyKind::DynBoth, 1, 3}, Cfg{PolicyKind::DynBoth, 2, 4},
        // Pathological one-frame caches: maximum page-out churn.
        Cfg{PolicyKind::Scoma70, 7, 1}, Cfg{PolicyKind::DynLru, 7, 1},
        Cfg{PolicyKind::DynUtil, 7, 1}, Cfg{PolicyKind::DynBoth, 7, 1},
        // Lazy migration on: homes move under the traffic.
        Cfg{PolicyKind::Scoma, 11, 0, true},
        Cfg{PolicyKind::LaNuma, 11, 0, true},
        Cfg{PolicyKind::DynLru, 11, 3, true},
        Cfg{PolicyKind::Scoma70, 11, 2, true}),
    [](const ::testing::TestParamInfo<Cfg> &info) {
        std::string name = policyName(info.param.policy);
        for (auto &ch : name) {
            if (ch == '-')
                ch = '_';
        }
        name += "_s" + std::to_string(info.param.seed);
        if (info.param.migrate)
            name += "_mig";
        return name;
    });

} // namespace
} // namespace prism
