/**
 * @file
 * KV workload tests: Zipfian sampler statistics, node-local partition
 * routing, determinism (rerun and --jobs-intra invariance), and the
 * exec == record == replay contract at tiny scale.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/machine.hh"
#include "sim/rng.hh"
#include "workload/apps.hh"
#include "workload/experiment.hh"
#include "workload/kvstore.hh"
#include "workload/workload.hh"

namespace prism {
namespace {

MachineConfig
smallCfg(unsigned jobs_intra = 1)
{
    MachineConfig cfg;
    cfg.numNodes = 4;
    cfg.procsPerNode = 2;
    cfg.jobsIntra = jobs_intra;
    return cfg;
}

KvStoreWorkload::Params
tinyParams()
{
    KvStoreWorkload::Params p = kvParamsFor(AppScale::Tiny);
    return p;
}

AppSpec
kvSpec(const KvStoreWorkload::Params &p, const std::string &name = "KV")
{
    return AppSpec{name,
                   [p] { return std::make_unique<KvStoreWorkload>(p); }};
}

/** Report JSON with the wall-clock timestamp cleared. */
std::string
reportJson(const RunReport &r)
{
    RunReport s = r;
    s.generatedAt.clear();
    s.frontend.clear();
    s.traceWorkload.clear();
    s.traceOps = 0;
    std::ostringstream os;
    s.writeJson(os);
    return os.str();
}

// --- ZipfianSampler --------------------------------------------------

TEST(Zipfian, RanksStayInBounds)
{
    const ZipfianSampler z(1024, 0.99);
    Rng rng(7);
    for (int i = 0; i < 20000; ++i)
        EXPECT_LT(z(rng), 1024u);
}

TEST(Zipfian, SameSeedSameSequence)
{
    const ZipfianSampler z(4096, 0.9);
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(z(a), z(b));
}

/**
 * Rank-frequency slope sanity: under Zipf(theta) the frequency of
 * rank r is proportional to 1/(r+1)^theta, so f(0)/f(9) should be
 * close to 10^theta.  With theta = 0.99 and 200k draws the ratio is
 * ~9.8; accept a generous band so the test is seed-robust.
 */
TEST(Zipfian, RankFrequencySlopeMatchesTheta)
{
    const std::uint64_t n = 1024;
    const double theta = 0.99;
    const ZipfianSampler z(n, theta);
    Rng rng(2026);
    std::vector<std::uint64_t> freq(n, 0);
    const int draws = 200000;
    for (int i = 0; i < draws; ++i)
        ++freq[z(rng)];

    // The head dominates: rank 0 alone holds a double-digit share.
    EXPECT_GT(freq[0], static_cast<std::uint64_t>(draws / 20));
    // Monotone-ish head (allow sampling noise only far down the tail).
    EXPECT_GT(freq[0], freq[1]);
    EXPECT_GT(freq[1], freq[3]);
    EXPECT_GT(freq[3], freq[9]);

    const double ratio = static_cast<double>(freq[0]) /
                         static_cast<double>(freq[9]);
    const double want = std::pow(10.0, theta); // ~9.77
    EXPECT_GT(ratio, want * 0.7);
    EXPECT_LT(ratio, want * 1.4);
}

TEST(Zipfian, ThetaZeroIsUniform)
{
    const std::uint64_t n = 256;
    const ZipfianSampler z(n, 0.0);
    Rng rng(11);
    std::vector<std::uint64_t> freq(n, 0);
    const int draws = 256000; // 1000 per rank in expectation
    for (int i = 0; i < draws; ++i)
        ++freq[z(rng)];
    for (std::uint64_t r = 0; r < n; ++r) {
        EXPECT_GT(freq[r], 800u) << "rank " << r;
        EXPECT_LT(freq[r], 1250u) << "rank " << r;
    }
}

// --- Partition routing -----------------------------------------------

/**
 * The whole point of the layout: every byte of partition p (index and
 * value regions alike) must live on a page whose static home is node
 * p, so a request routed to partition `key % nodes` touches only
 * node-local memory when it runs on that node.
 */
TEST(KvStore, PartitionPagesHomeOnTheirOwnNode)
{
    Machine m(smallCfg());
    KvStoreWorkload::Params p = tinyParams();
    KvStoreWorkload w(p);
    w.setup(m);

    for (std::uint64_t key = 0; key < p.keys; ++key) {
        const std::uint32_t part = w.partOf(key);
        EXPECT_EQ(part, key % smallCfg().numNodes);
        const GPage idx_page = w.gpageOf(w.indexAddr(key));
        const GPage val_page = w.gpageOf(w.valueAddr(key));
        ASSERT_EQ(m.staticHomeOf(idx_page), part) << "key " << key;
        ASSERT_EQ(m.staticHomeOf(val_page), part) << "key " << key;
    }
}

TEST(KvStore, DistinctKeysGetDistinctValueSlots)
{
    Machine m(smallCfg());
    KvStoreWorkload::Params p = tinyParams();
    KvStoreWorkload w(p);
    w.setup(m);

    std::set<std::uint64_t> index_slots, value_slots;
    for (std::uint64_t key = 0; key < p.keys; ++key) {
        EXPECT_TRUE(index_slots.insert(w.indexAddr(key).raw).second)
            << "index slot aliased at key " << key;
        EXPECT_TRUE(value_slots.insert(w.valueAddr(key).raw).second)
            << "value slot aliased at key " << key;
    }
}

// --- Determinism -----------------------------------------------------

TEST(KvStore, RerunsAreByteIdentical)
{
    const AppSpec app = kvSpec(tinyParams());
    RunReport a, b;
    runOnce(RunSpec{.machine = smallCfg()}, app, &a);
    runOnce(RunSpec{.machine = smallCfg()}, app, &b);
    EXPECT_EQ(reportJson(a), reportJson(b));
}

/**
 * Sharded-event-loop contract for KV (same as shard_determinism_test
 * pins for Radix): rerun-stable at every shard count, and
 * byte-identical across *sharded* counts.  The sequential scheduler
 * keeps its own pre-sharding message serialization, so jobs-intra 1
 * is rerun-compared but deliberately not byte-compared to the sharded
 * runs (docs/PERFORMANCE.md "Sharded scheduler").
 */
TEST(KvStore, JobsIntraRunsAreDeterministic)
{
    const AppSpec app = kvSpec(tinyParams());
    RunReport s2, s4, s4b, seq, seqb;
    runOnce(RunSpec{.machine = smallCfg(2)}, app, &s2);
    runOnce(RunSpec{.machine = smallCfg(4)}, app, &s4);
    runOnce(RunSpec{.machine = smallCfg(4)}, app, &s4b);
    runOnce(RunSpec{.machine = smallCfg(1)}, app, &seq);
    runOnce(RunSpec{.machine = smallCfg(1)}, app, &seqb);

    EXPECT_EQ(reportJson(s2), reportJson(s4)) << "jobsIntra 2 vs 4";
    EXPECT_EQ(reportJson(s4), reportJson(s4b)) << "jobsIntra 4 rerun";
    EXPECT_EQ(reportJson(seq), reportJson(seqb)) << "jobsIntra 1 rerun";
}

TEST(KvStore, ReportCarriesPerOpTypeHistograms)
{
    KvStoreWorkload::Params p = tinyParams();
    p.mix = KvMix::A; // reads and updates, no inserts/scans
    RunReport r;
    runOnce(RunSpec{.machine = smallCfg()}, kvSpec(p), &r);

    auto find = [&](const char *name) -> const
        RunReport::HistogramSummary * {
        for (const auto &h : r.histograms) {
            if (h.component == "workload" && h.name == name)
                return &h;
        }
        return nullptr;
    };
    const auto *read = find("kv.read.latency");
    const auto *update = find("kv.update.latency");
    const auto *insert = find("kv.insert.latency");
    const auto *scan = find("kv.scan.latency");
    ASSERT_NE(read, nullptr);
    ASSERT_NE(update, nullptr);
    ASSERT_NE(insert, nullptr);
    ASSERT_NE(scan, nullptr);

    EXPECT_GT(read->count, 0u);
    EXPECT_GT(update->count, 0u);
    EXPECT_LE(read->p50, read->p99);
    EXPECT_GT(read->p50, 0.0);

    // Mix A issues no inserts or scans: those histograms must appear
    // as explicit zero-count entries with zero quantiles — never NaN
    // or interpolation garbage (the Histogram edge-case regressions).
    EXPECT_EQ(insert->count, 0u);
    EXPECT_EQ(insert->p99, 0.0);
    EXPECT_EQ(scan->count, 0u);
    EXPECT_EQ(scan->p99, 0.0);
}

TEST(KvStore, ChurnRotatesTheHotSet)
{
    // With churn the same request index maps popular ranks onto
    // different keys across epochs; the run must still complete and
    // stay deterministic.
    KvStoreWorkload::Params p = tinyParams();
    p.churnPeriod = 64;
    RunReport a, b;
    runOnce(RunSpec{.machine = smallCfg()}, kvSpec(p), &a);
    runOnce(RunSpec{.machine = smallCfg()}, kvSpec(p), &b);
    EXPECT_EQ(reportJson(a), reportJson(b));
    EXPECT_GT(a.metrics.references, 0u);
}

// --- Frontend contract ----------------------------------------------

/**
 * exec == record == replay for KV at the recorded configuration
 * (docs/TRACE.md).  KV's reference stream is timing-dependent (the
 * open-loop generator idle-pads to its arrival schedule), so only
 * same-config replay is exact — which is exactly what this pins.
 * Workload histograms are compared on the exec/record side only; a
 * replay has none (the trace frontend does not run the KV body).
 */
TEST(KvStore, ExecRecordReplayAgree)
{
    const std::string path = testing::TempDir() + "kvstore_rrr.ptrace";
    const AppSpec app = kvSpec(tinyParams());

    RunReport exec_r, rec_r, rep_r;
    runOnce(RunSpec{.machine = smallCfg()}, app, &exec_r);
    runOnce(RunSpec{.machine = smallCfg(),
                    .frontend = FrontendKind::Record,
                    .traceFile = path},
            app, &rec_r);
    runOnce(RunSpec{.machine = smallCfg(),
                    .frontend = FrontendKind::Replay,
                    .traceFile = path},
            app, &rep_r);

    // Recording must not perturb the run at all (histograms included).
    EXPECT_EQ(reportJson(rec_r), reportJson(exec_r));

    // Replay matches once the workload-level histograms are dropped.
    auto core = [](const RunReport &r) {
        RunReport s = r;
        std::erase_if(s.histograms, [](const auto &h) {
            return h.component == "workload";
        });
        return reportJson(s);
    };
    EXPECT_EQ(core(rep_r), core(exec_r));
    EXPECT_EQ(rep_r.traceOps, rec_r.traceOps);
    EXPECT_GT(rep_r.traceOps, 0u);
}

} // namespace
} // namespace prism
